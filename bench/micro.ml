(* Bechamel microbenchmarks for the building blocks whose cost the
   paper's architecture leans on: event-queue throughput, signing and
   verification, replica replay, routing, and offline planning. *)

open Bechamel
open Toolkit
module Time = Btr_util.Time

let topo = lazy (Btr_net.Topology.fully_connected ~n:8 ~bandwidth_bps:10_000_000 ~latency:(Time.us 50))
let avionics = lazy (Btr_workload.Generators.avionics ~n_nodes:8)

let bench_event_queue =
  Test.make ~name:"engine: schedule+run 1000 events"
    (Staged.stage (fun () ->
         let e = Btr_sim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Btr_sim.Engine.schedule e ~at:(i * 7 mod 997) (fun _ -> ()))
         done;
         Btr_sim.Engine.run e))

let bench_sign =
  let auth = Btr_crypto.Auth.create () in
  let key = Btr_crypto.Auth.gen_key auth ~owner:0 in
  Test.make ~name:"auth: sign 64B"
    (Staged.stage (fun () ->
         ignore (Btr_crypto.Auth.sign auth key "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")))

let bench_verify =
  let auth = Btr_crypto.Auth.create () in
  let key = Btr_crypto.Auth.gen_key auth ~owner:0 in
  let msg = String.make 64 'x' in
  let tag = Btr_crypto.Auth.sign auth key msg in
  Test.make ~name:"auth: verify 64B"
    (Staged.stage (fun () -> ignore (Btr_crypto.Auth.verify auth ~signer:0 msg tag)))

let bench_replay =
  let inputs =
    [ { Btr.Behavior.orig_flow = 0; value = [| 1.0; 2.0 |] };
      { Btr.Behavior.orig_flow = 1; value = [| 3.0 |] } ]
  in
  Test.make ~name:"checker: replay + digest one task"
    (Staged.stage (fun () ->
         match Btr.Behavior.default_compute 7 ~period:42 ~inputs with
         | Some v -> ignore (Btr.Behavior.value_digest v)
         | None -> ()))

let bench_route =
  Test.make ~name:"topology: route across 8-clique"
    (Staged.stage (fun () ->
         ignore (Btr_net.Topology.route (Lazy.force topo) ~src:0 ~dst:7)))

let bench_plan =
  Test.make ~name:"planner: full strategy (8 nodes, f=1)"
    (Staged.stage (fun () ->
         let cfg = Btr_planner.Planner.default_config ~f:1 ~recovery_bound:(Time.sec 1) in
         match Btr_planner.Planner.build cfg (Lazy.force avionics) (Lazy.force topo) with
         | Ok _ -> ()
         | Error _ -> assert false))

let bench_period =
  Test.make ~name:"runtime: one second of avionics (fault-free)"
    (Staged.stage (fun () ->
         let s =
           Btr.Scenario.spec ~workload:(Lazy.force avionics)
             ~topology:(Lazy.force topo) ~f:1 ~recovery_bound:(Time.ms 200)
             ~horizon:(Time.sec 1) ()
         in
         match Btr.Scenario.run s with Ok _ -> () | Error _ -> assert false))

let benchmarks =
  Test.make_grouped ~name:"btr"
    [ bench_event_queue; bench_sign; bench_verify; bench_replay; bench_route;
      bench_plan; bench_period ]

let run () =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Bechamel.Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances benchmarks in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Btr_util.Table.sorted_fold ~cmp:String.compare
      (fun name o acc ->
        match Analyze.OLS.estimates o with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> acc)
      results []
  in
  List.iter
    (fun (name, est) -> Printf.printf "  %-50s %14.1f ns/run\n" name est)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
