(* Campaign throughput: trials/sec for increasing worker-domain counts,
   with the fingerprint cross-checked so the speedup claim never hides a
   determinism regression. Writes BENCH_campaign.json with --json. *)

open Btr_util
module Campaign = Btr_campaign.Campaign
module Orchestrate = Btr_campaign.Orchestrate

let grid =
  {
    Campaign.default_grid with
    Campaign.fault_bounds = [ 1; 2 ];
    control_shares = [ None; Some 0.02 ];
  }

let jobs_axis () =
  let recommended = Campaign.default_jobs () in
  List.sort_uniq Int.compare [ 1; 2; 4; recommended ]

(* btr-lint: allow wall-clock — benchmark timing is inherently
   wall-clock; simulated results stay deterministic. *)
let now () = Unix.gettimeofday ()

let run ?json_file () =
  let trials = 40 in
  let spec = Campaign.spec ~grid ~trials ~seed:42 ~shrink:false () in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "CB  Campaign throughput (%d trials, %d configs, recommended domains = %d)"
           trials
           (List.length (Campaign.grid_params grid))
           (Domain.recommended_domain_count ()))
      ~header:[ "jobs"; "seconds"; "trials/sec"; "speedup"; "fingerprint" ]
  in
  let rows =
    List.map
      (fun jobs ->
        let t0 = now () in
        let result = Campaign.run ~jobs spec in
        let dt = now () -. t0 in
        (jobs, dt, Campaign.fingerprint result))
      (jobs_axis ())
  in
  let base =
    match rows with
    | (_, dt, _) :: _ -> dt
    | [] -> 1.0
  in
  let fingerprints = List.sort_uniq String.compare (List.map (fun (_, _, fp) -> fp) rows) in
  List.iter
    (fun (jobs, dt, fp) ->
      Table.add_row table
        [
          string_of_int jobs;
          Printf.sprintf "%.3f" dt;
          Printf.sprintf "%.1f" (float_of_int trials /. dt);
          Printf.sprintf "%.2fx" (base /. dt);
          fp;
        ])
    rows;
  Table.print table;
  (match fingerprints with
  | [ _ ] -> print_endline "fingerprints identical across worker counts: OK"
  | _ -> print_endline "FINGERPRINT MISMATCH ACROSS WORKER COUNTS");
  (* On a single-core host the speedup column cannot exceed 1x: the
     domains timeshare one CPU. The determinism cross-check is the part
     that must hold everywhere. *)
  (* Adaptive frontier vs exhaustive grid scan on a fixed R slice: both
     must locate the same boundary; the frontier's value is doing it in
     far fewer probe trials. *)
  let fspec =
    {
      Orchestrate.slice_grid = Campaign.default_grid;
      axis = Orchestrate.Axis_r;
      lo = Time.ms 50;
      hi = Time.ms 400;
      tolerance = Time.ms 10;
      probes = 2;
      fseed = 42;
    }
  in
  let timed search =
    let t0 = now () in
    match search fspec with
    | Error m -> failwith ("frontier bench: " ^ m)
    | Ok r -> (r, now () -. t0)
  in
  let fr, fr_dt = timed (fun fs -> Orchestrate.frontier fs) in
  let gr, gr_dt = timed (fun fs -> Orchestrate.grid_scan fs) in
  let boundary_match =
    List.length fr.Orchestrate.slices = List.length gr.Orchestrate.slices
    && List.for_all2
         (fun (a : Orchestrate.slice_result) (b : Orchestrate.slice_result) ->
           a.Orchestrate.found = b.Orchestrate.found)
         fr.Orchestrate.slices gr.Orchestrate.slices
  in
  let boundary_str (r : Orchestrate.frontier_result) =
    match r.Orchestrate.slices with
    | [ { Orchestrate.found = Some b; _ } ] ->
      Printf.sprintf "admit >= %s" (Time.to_string b.Orchestrate.admit_at)
    | _ -> "-"
  in
  let ftable =
    Table.create
      ~title:
        (Printf.sprintf "CB  Frontier vs grid (axis r, %s..%s, tol %s, %d probes/point)"
           (Time.to_string fspec.Orchestrate.lo)
           (Time.to_string fspec.Orchestrate.hi)
           (Time.to_string fspec.Orchestrate.tolerance)
           fspec.Orchestrate.probes)
      ~header:[ "method"; "trials"; "seconds"; "boundary" ]
  in
  Table.add_row ftable
    [
      "grid scan";
      string_of_int gr.Orchestrate.total_probes;
      Printf.sprintf "%.3f" gr_dt;
      boundary_str gr;
    ];
  Table.add_row ftable
    [
      "frontier";
      string_of_int fr.Orchestrate.total_probes;
      Printf.sprintf "%.3f" fr_dt;
      boundary_str fr;
    ];
  Table.print ftable;
  print_endline
    (if boundary_match then "frontier matches exhaustive boundary: OK"
     else "FRONTIER BOUNDARY MISMATCH");
  match json_file with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Printf.fprintf oc
      "{\"bench\":\"campaign\",\"trials\":%d,\"configs\":%d,\"cores\":%d,\"fingerprints_identical\":%b}\n"
      trials
      (List.length (Campaign.grid_params grid))
      (Domain.recommended_domain_count ())
      (match fingerprints with [ _ ] -> true | _ -> false);
    List.iter
      (fun (jobs, dt, fp) ->
        Printf.fprintf oc
          "{\"jobs\":%d,\"millis\":%d,\"trials_per_sec_x10\":%d,\"speedup_x100\":%d,\"fingerprint\":\"%s\"}\n"
          jobs
          (int_of_float ((dt *. 1000.0) +. 0.5))
          (int_of_float ((float_of_int trials /. dt *. 10.0) +. 0.5))
          (int_of_float ((base /. dt *. 100.0) +. 0.5))
          fp)
      rows;
    Printf.fprintf oc
      "{\"bench\":\"frontier_vs_grid\",\"grid_trials\":%d,\"frontier_trials\":%d,\"boundary_match\":%b}\n"
      gr.Orchestrate.total_probes fr.Orchestrate.total_probes boundary_match;
    close_out oc;
    Printf.printf "wrote %s\n" file
