(* Benchmark harness: regenerates every experiment table (E1-E11, see
   DESIGN.md section 3 and EXPERIMENTS.md) and, with --micro, runs the
   Bechamel microbenchmarks.

   Usage:
     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe e2 e3      # selected experiments
     dune exec bench/main.exe -- --micro # microbenchmarks only
     dune exec bench/main.exe -- --campaign        # campaign throughput
     dune exec bench/main.exe -- --campaign --json # + BENCH_campaign.json
     dune exec bench/main.exe -- --engine --json   # + BENCH_engine.json
     dune exec bench/main.exe -- --engine --engine-max-depth 100000  # CI smoke
     dune exec bench/main.exe -- --engine --engine-backend pheap # old backend
     dune exec bench/main.exe -- --planner --json  # + BENCH_planner.json
     dune exec bench/main.exe -- --planner --planner-max 1000  # CI smoke
     dune exec bench/main.exe -- --trace t.jsonl --metrics m.json
       # trace the demo deployment instead of running experiments  *)

(* Run the standard avionics demo with recording sinks attached, so the
   E-series numbers can be recomputed offline from the JSONL trace
   (DESIGN.md "Observability"). *)
let trace_demo ~trace ~metrics =
  let oc = Option.map open_out trace in
  let obs =
    match oc with
    | Some oc -> Btr_obs.Obs.with_jsonl oc
    | None -> Btr_obs.Obs.create ()
  in
  (match Btr.Scenario.run (Btr.Scenario.avionics_demo ~obs ()) with
  | Error e -> Format.eprintf "error: %a@." Btr_planner.Planner.pp_error e
  | Ok _ -> ());
  Btr_obs.Obs.flush obs;
  Option.iter close_out oc;
  Option.iter
    (fun file ->
      let mc = open_out file in
      output_string mc (Btr_obs.Obs.metrics_json obs);
      output_char mc '\n';
      close_out mc)
    metrics

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let micro = ref false in
  let campaign = ref false in
  let engine = ref false in
  let planner = ref false in
  let planner_max = ref None in
  let engine_max_depth = ref None in
  let json = ref false in
  let trace = ref None in
  let metrics = ref None in
  let rec collect acc = function
    | [] -> List.rev acc
    | "--micro" :: rest ->
      micro := true;
      collect acc rest
    | "--campaign" :: rest ->
      campaign := true;
      collect acc rest
    | "--engine" :: rest ->
      engine := true;
      collect acc rest
    | "--planner" :: rest ->
      planner := true;
      collect acc rest
    | "--planner-max" :: n :: rest ->
      planner_max := int_of_string_opt n;
      collect acc rest
    | "--engine-max-depth" :: n :: rest ->
      engine_max_depth := int_of_string_opt n;
      collect acc rest
    | "--engine-backend" :: b :: rest ->
      (match Btr_sim.Engine.backend_of_string b with
      | Some backend -> Btr_sim.Engine.set_default_backend backend
      | None ->
        Printf.eprintf "unknown engine backend %S (have: wheel, pheap)\n" b;
        exit 2);
      collect acc rest
    | "--json" :: rest ->
      json := true;
      collect acc rest
    | "--trace" :: file :: rest ->
      trace := Some file;
      collect acc rest
    | "--metrics" :: file :: rest ->
      metrics := Some file;
      collect acc rest
    | a :: rest -> collect (a :: acc) rest
  in
  let wanted = collect [] args in
  if !micro then begin
    print_endline "== microbenchmarks ==";
    Micro.run ()
  end;
  if !campaign then
    Campaign_bench.run
      ?json_file:(if !json then Some "BENCH_campaign.json" else None)
      ();
  if !engine then
    Engine_bench.run
      ?json_file:(if !json then Some "BENCH_engine.json" else None)
      ?max_depth:!engine_max_depth ();
  if !planner then
    Planner_bench.run
      ?json_file:(if !json then Some "BENCH_planner.json" else None)
      ?max_nodes:!planner_max ();
  if !trace <> None || !metrics <> None then
    trace_demo ~trace:!trace ~metrics:!metrics
  else begin
    let selected =
      match wanted with
      | [] ->
        if !micro || !campaign || !engine || !planner then [] else Experiments.all
      | names ->
        List.filter_map
          (fun n ->
            match List.assoc_opt (String.lowercase_ascii n) Experiments.all with
            | Some fn -> Some (n, fn)
            | None ->
              Printf.eprintf "unknown experiment %S (have: %s)\n" n
                (String.concat ", " (List.map fst Experiments.all));
              None)
          names
    in
    List.iter
      (fun (name, fn) ->
        Printf.printf "running %s...\n%!" name;
        fn ())
      selected
  end
